package bcrdb

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	mrand "math/rand"
	"strings"
	"sync"
	"time"

	"bcrdb/internal/identity"
	"bcrdb/internal/ledger"
	"bcrdb/internal/transport"
)

// ErrRemoteClosed is returned by RemoteClient operations after Close.
var ErrRemoteClosed = errors.New("bcrdb: remote client closed")

// RemoteConfig configures a client that reaches the network over a
// Transport instead of living inside the fabric process.
type RemoteConfig struct {
	// URL is the base URL of a bcrdb-server ("http://host:port").
	URL string
	// Username must be declared in the server network's Options.Orgs
	// (or be an "admin@<org>" administrator).
	Username string
	// Org is the user's organization. Empty defaults to the org of the
	// node behind URL.
	Org string
	// IdentitySecret must equal the server network's IdentitySecret —
	// the client derives its signing key from it, and the server-side
	// nodes verify signatures against the genesis certificates.
	IdentitySecret string
	// Retry follows the same semantics as Options.Retry.
	Retry RetryPolicy
}

// RemoteClient submits signed transactions over a Transport and follows
// the server's commit stream for results. Retry, id-dedup and ledger-
// lookup semantics are identical to the in-process Client: the SAME
// signed transaction is resubmitted, the fabric deduplicates by id, and
// the replicated sys_ledger table resolves lost notifications.
type RemoteClient struct {
	tr     transport.Transport
	signer *identity.Signer
	flow   Flow
	retry  RetryPolicy

	rngMu sync.Mutex
	rng   *mrand.Rand

	mu      sync.Mutex
	waiters map[string][]chan TxResult

	done     chan struct{}
	doneOnce sync.Once
	wg       sync.WaitGroup
}

// DialRemote connects to a bcrdb-server, derives the user's identity
// from the shared secret and starts the commit-stream follower.
func DialRemote(cfg RemoteConfig) (*RemoteClient, error) {
	if cfg.URL == "" || cfg.Username == "" {
		return nil, errors.New("bcrdb: RemoteConfig needs URL and Username")
	}
	if cfg.IdentitySecret == "" {
		return nil, errors.New("bcrdb: RemoteConfig needs the cluster's IdentitySecret")
	}
	tr := transport.Dial(cfg.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	info, err := tr.Info(ctx)
	cancel()
	if err != nil {
		return nil, fmt.Errorf("bcrdb: dial %s: %w", cfg.URL, err)
	}
	org := cfg.Org
	if org == "" {
		org = info.Org
	}
	role := identity.RoleClient
	if strings.HasPrefix(cfg.Username, "admin@") {
		role = identity.RoleAdmin
	}
	signer, err := identity.Deterministic(cfg.Username, org, role, cfg.IdentitySecret)
	if err != nil {
		return nil, err
	}
	flow := ExecuteOrder
	if info.Flow == "order-execute" {
		flow = OrderThenExecute
	}
	return NewRemoteClient(tr, signer, flow, cfg.Retry), nil
}

// NewRemoteClient builds a remote client over an existing transport
// (DialRemote is the usual entry; tests pass a Direct transport to run
// the identical client logic against the in-process fabric).
func NewRemoteClient(tr transport.Transport, signer *identity.Signer, flow Flow, retry RetryPolicy) *RemoteClient {
	seed := retry.Seed
	if seed == 0 {
		seed = mrand.Int63()
	}
	r := &RemoteClient{
		tr:      tr,
		signer:  signer,
		flow:    flow,
		retry:   retry,
		rng:     mrand.New(mrand.NewSource(seed ^ int64(fnvIdx(signer.Name)))),
		waiters: make(map[string][]chan TxResult),
		done:    make(chan struct{}),
	}
	r.wg.Add(1)
	go r.followCommits()
	return r
}

// Username returns the client's user name.
func (r *RemoteClient) Username() string { return r.signer.Name }

// Close stops the commit-stream follower and releases the transport.
func (r *RemoteClient) Close() error {
	r.doneOnce.Do(func() { close(r.done) })
	r.wg.Wait()
	return r.tr.Close()
}

// followCommits keeps one commit stream open, redialing with backoff
// when it drops. Results committed while no stream was connected are
// recovered by Invoke's sys_ledger lookup, the same lost-notification
// path the in-process client relies on.
func (r *RemoteClient) followCommits() {
	defer r.wg.Done()
	redial := 50 * time.Millisecond
	for {
		select {
		case <-r.done:
			return
		default:
		}
		ctx, cancel := context.WithCancel(context.Background())
		ch, stop, err := r.tr.CommitStream(ctx)
		if err != nil {
			cancel()
			t := time.NewTimer(redial)
			select {
			case <-r.done:
				t.Stop()
				return
			case <-t.C:
			}
			if redial *= 2; redial > 2*time.Second {
				redial = 2 * time.Second
			}
			continue
		}
		redial = 50 * time.Millisecond
	stream:
		for {
			select {
			case <-r.done:
				stop()
				cancel()
				return
			case res, ok := <-ch:
				if !ok {
					break stream // connection lost: redial
				}
				r.dispatch(res)
			}
		}
		stop()
		cancel()
	}
}

func (r *RemoteClient) dispatch(res TxResult) {
	r.mu.Lock()
	chans := r.waiters[res.ID]
	delete(r.waiters, res.ID)
	r.mu.Unlock()
	for _, ch := range chans {
		select {
		case ch <- res:
		default:
		}
	}
}

func (r *RemoteClient) addWaiter(id string) <-chan TxResult {
	ch := make(chan TxResult, 1)
	r.mu.Lock()
	r.waiters[id] = append(r.waiters[id], ch)
	r.mu.Unlock()
	return ch
}

func (r *RemoteClient) removeWaiter(id string, ch <-chan TxResult) {
	r.mu.Lock()
	ws := r.waiters[id]
	for i, w := range ws {
		if (<-chan TxResult)(w) == ch {
			ws = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(ws) == 0 {
		delete(r.waiters, id)
	} else {
		r.waiters[id] = ws
	}
	r.mu.Unlock()
}

// buildTx mirrors Client.buildTx: in execute-order flow the snapshot is
// the connected node's current height (fetched over the wire) and the
// id is the deterministic §3.4.3 hash; in order-then-execute the id is
// a random nonce.
func (r *RemoteClient) buildTx(ctx context.Context, contract string, args []Value) (*ledger.Transaction, error) {
	tx := &ledger.Transaction{
		Username: r.signer.Name,
		Contract: contract,
		Args:     args,
	}
	if r.flow == ExecuteOrder {
		info, err := r.tr.Info(ctx)
		if err != nil {
			return nil, fmt.Errorf("bcrdb: fetch snapshot height: %w", err)
		}
		tx.Snapshot = info.Height
		tx.ID = ledger.ComputeID(r.signer.Name, contract, args, tx.Snapshot)
	} else {
		var nonce [16]byte
		if _, err := rand.Read(nonce[:]); err != nil {
			panic(err) // crypto/rand failure is unrecoverable
		}
		tx.ID = hex.EncodeToString(nonce[:])
	}
	tx.Signature = r.signer.Sign(tx.SignBytes())
	return tx, nil
}

func (r *RemoteClient) jitter(n int64) int64 {
	r.rngMu.Lock()
	v := r.rng.Int63n(n)
	r.rngMu.Unlock()
	return v
}

func (r *RemoteClient) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.done:
		return false
	}
}

// lookupLedger consults the replicated ledger over the wire.
func (r *RemoteClient) lookupLedger(ctx context.Context, id string) (TxResult, bool) {
	res, err := r.tr.Query(ctx, -1, `SELECT block, status FROM sys_ledger WHERE txid = $1`, []Value{Text(id)})
	if err != nil || len(res.Rows) == 0 {
		return TxResult{}, false
	}
	out := TxResult{
		ID:        id,
		Block:     uint64(res.Rows[0][0].Int()),
		Committed: res.Rows[0][1].Str() == "committed",
	}
	if !out.Committed {
		out.Reason = "recorded aborted in sys_ledger"
	}
	return out, true
}

// Invoke submits a transaction and waits for its result with the same
// retry/backoff/ledger-fallback semantics as Client.Invoke.
func (r *RemoteClient) Invoke(contract string, args ...Value) (TxResult, error) {
	pol := r.retry.withDefaults()
	ctx := context.Background()
	tx, err := r.buildTx(ctx, contract, args)
	if err != nil {
		return TxResult{}, err
	}
	payload := ledger.MarshalTransaction(tx)
	backoff := pol.Backoff
	var lastErr error
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if attempt > 0 {
			wait := backoff/2 + time.Duration(r.jitter(int64(backoff/2)+1))
			if !r.sleep(wait) {
				return TxResult{}, &UnresolvedError{ID: tx.ID, Attempts: attempt, Last: ErrRemoteClosed}
			}
			backoff *= 2
			if backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
			if res, ok := r.lookupLedger(ctx, tx.ID); ok {
				return res, nil
			}
		}
		select {
		case <-r.done:
			return TxResult{}, &UnresolvedError{ID: tx.ID, Attempts: attempt, Last: ErrRemoteClosed}
		default:
		}
		push := r.addWaiter(tx.ID)
		if err := r.tr.Submit(ctx, payload); err != nil {
			r.removeWaiter(tx.ID, push)
			lastErr = err
			continue
		}
		res, err := r.await(tx.ID, push, pol.Timeout)
		if err == nil {
			return res, nil
		}
		lastErr = err
	}
	if res, ok := r.lookupLedger(ctx, tx.ID); ok {
		return res, nil
	}
	return TxResult{}, &UnresolvedError{ID: tx.ID, Attempts: pol.Attempts, Last: lastErr}
}

func (r *RemoteClient) await(id string, push <-chan TxResult, timeout time.Duration) (TxResult, error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	defer r.removeWaiter(id, push)
	select {
	case res := <-push:
		return res, nil
	case <-r.done:
		return TxResult{}, ErrRemoteClosed
	case <-timer.C:
		return TxResult{}, fmt.Errorf("bcrdb: timeout waiting for tx %s", id)
	}
}

// Query runs a read-only query at the connected node's current height.
func (r *RemoteClient) Query(sql string, params ...Value) (*Result, error) {
	return r.tr.Query(context.Background(), -1, sql, params)
}

// QueryAt runs a read-only query at a historic block height.
func (r *RemoteClient) QueryAt(height int64, sql string, params ...Value) (*Result, error) {
	return r.tr.Query(context.Background(), height, sql, params)
}

// Info reports the connected node's identity and heights.
func (r *RemoteClient) Info() (transport.Info, error) {
	return r.tr.Info(context.Background())
}
