package bcrdb

import (
	"testing"
	"time"

	"bcrdb/internal/simnet"
)

// Regression test for the client waiter leak: an Await that times out
// must deregister both its node-side subscription and its client-side
// waiter entry. Before the fix the waiters map grew by one entry per
// timed-out transaction for the life of the client.
func TestAwaitTimeoutReleasesWaiters(t *testing.T) {
	nw, err := NewNetwork(demoOptions(OrderThenExecute))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	alice := nw.Client("alice")

	// Black-hole everything alice sends: the submission is accepted by
	// the network but never reaches an orderer, so the tx never resolves.
	nw.Net().SetFaultsFn(func(from, to string) simnet.Faults {
		if from == "alice" {
			return simnet.Faults{DropProb: 1}
		}
		return simnet.Faults{}
	})

	p, err := alice.Submit("open_account", Int(7001), Text("x"), Float(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Await(150 * time.Millisecond); err == nil {
		t.Fatal("Await should time out for a black-holed submission")
	}
	alice.mu.Lock()
	leaked := len(alice.waiters)
	alice.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("client waiters map leaked %d entries after Await timeout", leaked)
	}

	// The client stays fully usable once the fault heals.
	nw.Net().ClearFaults()
	res, err := alice.Invoke("open_account", Int(7002), Text("y"), Float(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatalf("post-heal invoke aborted: %s", res.Reason)
	}
	alice.mu.Lock()
	leaked = len(alice.waiters)
	alice.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("client waiters map leaked %d entries after committed invoke", leaked)
	}
}

// Crashing a node's delivering orderer under load must trigger exactly
// the failover path: the node re-subscribes to the next orderer in the
// ring, backfills from its peers, and the network stays consistent —
// all without restarting anything.
func TestOrdererFailoverUnderLoad(t *testing.T) {
	opts := demoOptions(OrderThenExecute)
	opts.FailoverTimeout = 600 * time.Millisecond
	opts.AntiEntropyEvery = 50 * time.Millisecond
	opts.Retry = RetryPolicy{Attempts: 4, Timeout: 2 * time.Second, Backoff: 50 * time.Millisecond}
	nw, err := NewNetwork(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	node0 := nw.Node(0)
	old := node0.DeliveringOrderer()
	idx := -1
	for i, o := range nw.Orderers() {
		if o == old {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatalf("delivering orderer %q not in ring %v", old, nw.Orderers())
	}

	// Prove the happy path first, then crash node0's orderer.
	if res, err := nw.Client("alice").Invoke("open_account", Int(8000), Text("x"), Float(1)); err != nil || !res.Committed {
		t.Fatalf("warmup invoke: %+v, %v", res, err)
	}
	nw.StopOrderer(idx)

	// Keep load flowing from every org while the failover plays out.
	users := []string{"alice", "bob", "carol"}
	deadline := time.Now().Add(20 * time.Second)
	committed := 0
	for i := 0; node0.Metrics().OrdererFailovers.Load() == 0 || committed < 5; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("no failover after 20s under load (failovers=%d committed=%d)",
				node0.Metrics().OrdererFailovers.Load(), committed)
		}
		res, err := nw.Client(users[i%len(users)]).Invoke("open_account", Int(int64(8100+i)), Text("x"), Float(1))
		if err != nil {
			continue // lost in the failover window; the next invoke retries fresh
		}
		if res.Committed {
			committed++
		}
	}
	if cur := node0.DeliveringOrderer(); cur == old {
		t.Fatalf("node0 still delivering from crashed orderer %s", cur)
	}

	// The node that lost its orderer must converge with the rest.
	if err := nw.WaitHeight(nw.Height(), 20*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := nw.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

// A node partitioned from every peer and orderer for 200+ blocks must
// catch all the way up through anti-entropy alone once the partition
// heals — no restart, no resubscription storm, bounded pending buffer.
func TestPartitionCatchUpWithoutRestart(t *testing.T) {
	opts := demoOptions(OrderThenExecute)
	opts.BlockSize = 1 // one block per tx: a few hundred invokes = a few hundred blocks
	opts.BlockTimeout = 5 * time.Millisecond
	opts.FailoverTimeout = 400 * time.Millisecond
	opts.AntiEntropyEvery = 50 * time.Millisecond
	nw, err := NewNetwork(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	node2 := nw.Node(2)
	isolated := node2.Name()
	var others []string
	for _, n := range nw.Nodes() {
		if n.Name() != isolated {
			others = append(others, n.Name())
		}
	}
	others = append(others, nw.Orderers()...)
	for _, o := range others {
		nw.Net().Partition(isolated, o)
	}
	cutHeight := node2.Height()

	// Drive 200+ blocks through the healthy majority.
	alice := nw.Client("alice")
	for i := 0; i < 210; i++ {
		res, err := alice.Invoke("open_account", Int(int64(9000+i)), Text("x"), Float(1))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Committed {
			t.Fatalf("invoke %d aborted: %s", i, res.Reason)
		}
	}
	target := nw.Node(0).Height()
	if target-cutHeight < 200 {
		t.Fatalf("only %d blocks produced during the partition", target-cutHeight)
	}
	if h := node2.Height(); h != cutHeight {
		t.Fatalf("partitioned node advanced from %d to %d", cutHeight, h)
	}

	// Heal and let anti-entropy do the rest: tip gossip discovers the
	// deficit, windowed catch-up requests pull the range from peers.
	catchUpsBefore := node2.Metrics().CatchUpRequests.Load()
	for _, o := range others {
		nw.Net().Heal(isolated, o)
	}
	deadline := time.Now().Add(30 * time.Second)
	for node2.Height() < target {
		if time.Now().After(deadline) {
			t.Fatalf("node %s stuck at height %d (target %d) 30s after heal",
				isolated, node2.Height(), target)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := nw.WaitHeight(nw.Height(), 20*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := nw.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	if got := node2.Metrics().CatchUpRequests.Load(); got <= catchUpsBefore {
		t.Fatalf("healed without catch-up requests (before=%d after=%d) — wrong mechanism", catchUpsBefore, got)
	}
}
