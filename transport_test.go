package bcrdb

import (
	"fmt"
	"testing"
	"time"
)

// remoteOptions is demoOptions plus the deterministic identities remote
// clients need to sign verifiably.
func remoteOptions(flow Flow, secret string) Options {
	opts := demoOptions(flow)
	opts.IdentitySecret = secret
	opts.Retry = RetryPolicy{Attempts: 4, Timeout: 5 * time.Second, Backoff: 50 * time.Millisecond}
	return opts
}

// TestRemoteClientOverWire is the acceptance path: a transaction
// submitted by a RemoteClient over real HTTP commits and its
// notification streams back over the wire.
func TestRemoteClientOverWire(t *testing.T) {
	for _, flow := range []Flow{OrderThenExecute, ExecuteOrder} {
		name := map[Flow]string{OrderThenExecute: "OrderThenExecute", ExecuteOrder: "ExecuteOrder"}[flow]
		t.Run(name, func(t *testing.T) {
			nw, err := NewNetwork(remoteOptions(flow, "wire-secret"))
			if err != nil {
				t.Fatal(err)
			}
			defer nw.Close()
			srv, err := nw.Serve(0, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			rc, err := DialRemote(RemoteConfig{
				URL:            srv.URL(),
				Username:       "alice",
				IdentitySecret: "wire-secret",
				Retry:          RetryPolicy{Attempts: 4, Timeout: 5 * time.Second, Backoff: 50 * time.Millisecond},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer rc.Close()

			res, err := rc.Invoke("transfer", Int(1), Int(2), Float(30))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Committed {
				t.Fatalf("remote transfer aborted: %s", res.Reason)
			}
			rows, err := rc.Query(`SELECT balance FROM accounts ORDER BY id`)
			if err != nil {
				t.Fatal(err)
			}
			if rows.Rows[0][0].Float() != 70 || rows.Rows[1][0].Float() != 80 {
				t.Fatalf("balances over the wire = %v", rows.Rows)
			}
			info, err := rc.Info()
			if err != nil {
				t.Fatal(err)
			}
			if info.Node != "db.org1" || info.Org != "org1" {
				t.Fatalf("info = %+v", info)
			}
		})
	}
}

// TestWireDifferential runs the identical transaction sequence through
// the in-process client and through a RemoteClient over HTTP and
// demands bit-identical outcomes: same state digests, same sys_ledger
// rows. ExecuteOrder flow with awaited serial invokes makes both runs
// fully deterministic (deterministic tx ids, one tx per block), and the
// shared IdentitySecret makes the genesis certificates — which are part
// of the hashed state — identical too.
func TestWireDifferential(t *testing.T) {
	const secret = "differential-secret"
	type op struct {
		contract string
		args     []Value
	}
	ops := []op{
		{"transfer", []Value{Int(1), Int(2), Float(10)}},
		{"open_account", []Value{Int(3), Text("carol"), Float(500)}},
		{"transfer", []Value{Int(3), Int(1), Float(250)}},
		{"transfer", []Value{Int(2), Int(3), Float(5)}},
	}

	run := func(remote bool) (*Network, func(string, []Value) (TxResult, error), func()) {
		nw, err := NewNetwork(remoteOptions(ExecuteOrder, secret))
		if err != nil {
			t.Fatal(err)
		}
		if !remote {
			alice := nw.Client("alice")
			return nw, func(c string, a []Value) (TxResult, error) { return alice.Invoke(c, a...) }, nw.Close
		}
		srv, err := nw.Serve(0, "127.0.0.1:0")
		if err != nil {
			nw.Close()
			t.Fatal(err)
		}
		rc, err := DialRemote(RemoteConfig{
			URL: srv.URL(), Username: "alice", IdentitySecret: secret,
			Retry: RetryPolicy{Attempts: 4, Timeout: 5 * time.Second, Backoff: 50 * time.Millisecond},
		})
		if err != nil {
			srv.Close()
			nw.Close()
			t.Fatal(err)
		}
		cleanup := func() { rc.Close(); srv.Close(); nw.Close() }
		return nw, func(c string, a []Value) (TxResult, error) { return rc.Invoke(c, a...) }, cleanup
	}

	type outcome struct {
		height int64
		digest [32]byte
		ledger string
	}
	execute := func(remote bool) outcome {
		nw, invoke, cleanup := run(remote)
		defer cleanup()
		for i, o := range ops {
			res, err := invoke(o.contract, o.args)
			if err != nil {
				t.Fatalf("op %d (remote=%v): %v", i, remote, err)
			}
			if !res.Committed {
				t.Fatalf("op %d (remote=%v) aborted: %s", i, remote, res.Reason)
			}
			// Settle every replica before the next snapshot is taken so
			// both runs observe the same heights at the same steps.
			if err := nw.WaitHeight(int64(res.Block), 10*time.Second); err != nil {
				t.Fatal(err)
			}
		}
		h := nw.Node(0).Height()
		rows, err := nw.Client("alice").Query(`SELECT txid, block, status FROM sys_ledger ORDER BY block, txid`)
		if err != nil {
			t.Fatal(err)
		}
		var ledger string
		for _, r := range rows.Rows {
			ledger += fmt.Sprintf("%s|%d|%s\n", r[0].Str(), r[1].Int(), r[2].Str())
		}
		return outcome{height: h, digest: nw.Node(0).StateHash(h), ledger: ledger}
	}

	local := execute(false)
	wire := execute(true)
	if local.height != wire.height {
		t.Fatalf("heights diverge: local %d, wire %d", local.height, wire.height)
	}
	if local.digest != wire.digest {
		t.Fatalf("state digests diverge at height %d", local.height)
	}
	if local.ledger != wire.ledger {
		t.Fatalf("sys_ledger diverges:\nlocal:\n%s\nwire:\n%s", local.ledger, wire.ledger)
	}
}

// TestCommitStreamReconnect drops the server mid-session and asserts
// (1) the dropped subscriber's node-side registration is released and
// (2) the client's stream follower redials a replacement server on the
// same address and resumes receiving commit notifications.
func TestCommitStreamReconnect(t *testing.T) {
	nw, err := NewNetwork(remoteOptions(ExecuteOrder, "reconnect-secret"))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	srv, err := nw.Serve(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	rc, err := DialRemote(RemoteConfig{
		URL: srv.URL(), Username: "alice", IdentitySecret: "reconnect-secret",
		Retry: RetryPolicy{Attempts: 6, Timeout: 2 * time.Second, Backoff: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	if res, err := rc.Invoke("transfer", Int(1), Int(2), Float(5)); err != nil || !res.Committed {
		t.Fatalf("pre-drop invoke: %v / %+v", err, res)
	}
	waitFor(t, "stream connected", func() bool { return srv.ActiveStreams() == 1 })

	if err := srv.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}
	// The dropped subscriber's handler tears down as its connection
	// dies; the node-side registration must go with it.
	waitFor(t, "dropped stream released", func() bool { return srv.ActiveStreams() == 0 })

	// Same address, fresh server: the follower must find it on its own.
	srv2, err := nw.Serve(0, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	waitFor(t, "stream reconnected", func() bool { return srv2.ActiveStreams() == 1 })

	res, err := rc.Invoke("transfer", Int(2), Int(1), Float(3))
	if err != nil {
		t.Fatalf("post-reconnect invoke: %v", err)
	}
	if !res.Committed {
		t.Fatalf("post-reconnect transfer aborted: %s", res.Reason)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}
